(* Tests for the extension features built on the paper's Section 8
   discussion: re-keying after compromise, corrupted surrogates (Byzantine
   sketch), concurrent point-to-point channels, and the energy-bounded
   adversary model. *)

module Rekey = Groupkey.Rekey
module Protocol = Groupkey.Protocol
module Unicast = Secure_channel.Unicast

let check = Alcotest.check

let messages (v, w) = Printf.sprintf "m-%d-%d" v w

(* -- re-keying -- *)

let setup_once =
  lazy
    (let cfg = Radio.Config.make ~n:20 ~channels:2 ~t:1 ~seed:77L ~max_rounds:50_000_000 () in
     let outcome =
       Protocol.run ~cfg
         ~fame_adversary:(fun _ -> Radio.Adversary.null)
         ~hop_adversary:Radio.Adversary.null ()
     in
     (cfg, outcome))

let rekey_excludes_compromised () =
  let cfg, prev = Lazy.force setup_once in
  let rk =
    Rekey.run ~cfg ~previous:prev ~compromised:[ 7; 12 ]
      ~hop_adversary:(Radio.Adversary.random_jammer (Prng.Rng.create 3L) ~channels:2 ~budget:1)
      ()
  in
  check Alcotest.int "compromised never learn the new key" 0 rk.Rekey.excluded_with_key;
  check Alcotest.bool "survivors agree" true (rk.Rekey.agreed_key_holders >= 20 - 2 - 1);
  check Alcotest.int "nobody wrong" 0 rk.Rekey.wrong_key_holders

let rekey_produces_fresh_key () =
  let cfg, prev = Lazy.force setup_once in
  let rk =
    Rekey.run ~cfg ~previous:prev ~compromised:[ 5 ] ~hop_adversary:Radio.Adversary.null ()
  in
  let old_key = prev.Protocol.nodes.(0).Protocol.group_key in
  check Alcotest.bool "new key exists" true (rk.Rekey.group_key.(0) <> None);
  check Alcotest.bool "new key differs" true (rk.Rekey.group_key.(0) <> old_key)

let rekey_cheaper_than_setup () =
  let cfg, prev = Lazy.force setup_once in
  let rk =
    Rekey.run ~cfg ~previous:prev ~compromised:[] ~hop_adversary:Radio.Adversary.null ()
  in
  check Alcotest.bool "skips part 1" true (rk.Rekey.rounds < prev.Protocol.total_rounds / 2)

let rekey_rejects_compromised_leader () =
  let cfg, prev = Lazy.force setup_once in
  try
    ignore (Rekey.run ~cfg ~previous:prev ~compromised:[ 0 ] ~hop_adversary:Radio.Adversary.null ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* -- corrupted surrogates (E13 behaviour) -- *)

let corrupted_surrogates_poison_fame () =
  let t = 1 in
  let pairs = List.concat_map (fun v -> List.map (fun w -> (v, w)) [ 20; 21; 22; 23 ]) [ 0; 1 ] in
  let cfg = Radio.Config.make ~n:30 ~channels:2 ~t ~seed:11L ~max_rounds:Radio.Config.default_max_rounds () in
  let o =
    Ame.Fame.run ~corrupted:[ 2; 3; 4; 5 ] ~corruption:Ame.Fame.Forge_as_surrogate ~cfg
      ~pairs ~messages
      ~adversary:(fun _ -> Radio.Adversary.null) ()
  in
  let forged =
    List.filter (fun (pair, body) -> body <> messages pair) o.Ame.Fame.delivered
  in
  check Alcotest.bool "corrupt surrogates forge payloads" true (List.length forged > 0)

let lying_witnesses_break_agreement () =
  (* The deeper Byzantine problem: corrupted feedback witnesses contradict
     honest ones, so either nodes disagree on the referee response or the
     game removes undelivered edges -- measured as divergence or stranded
     deliveries.  This is why the paper leaves Byzantine t-disruptability
     open. *)
  let t = 1 in
  let pairs = List.concat_map (fun v -> List.map (fun w -> (v, w)) [ 20; 21; 22; 23 ]) [ 0; 1 ] in
  let cfg = Radio.Config.make ~n:30 ~channels:2 ~t ~seed:11L ~max_rounds:Radio.Config.default_max_rounds () in
  let o =
    Ame.Fame.run ~corrupted:[ 2; 3; 4; 5 ] ~corruption:Ame.Fame.Lie_as_witness ~cfg ~pairs
      ~messages
      ~adversary:(fun _ -> Radio.Adversary.null) ()
  in
  Alcotest.(check bool) "protocol visibly damaged" true
    (o.Ame.Fame.diverged || List.length o.Ame.Fame.delivered < List.length pairs)

let direct_immune_to_corrupt_relays () =
  let t = 1 in
  let pairs = List.concat_map (fun v -> List.map (fun w -> (v, w)) [ 20; 21; 22; 23 ]) [ 0; 1 ] in
  let cfg = Radio.Config.make ~n:30 ~channels:2 ~t ~seed:11L ~max_rounds:Radio.Config.default_max_rounds () in
  (* Direct has no surrogate mechanism at all: nothing to corrupt. *)
  let o = Ame.Direct.run ~cfg ~pairs ~messages ~adversary:(fun _ -> Radio.Adversary.null) () in
  List.iter
    (fun (pair, body) -> check Alcotest.string "authentic" (messages pair) body)
    o.Ame.Direct.delivered

(* -- unicast streams -- *)

let pair_keys (v, w) = Crypto.Sha256.digest (Printf.sprintf "k-%d-%d" (min v w) (max v w))

let unicast_delivers_concurrently () =
  let cfg = Radio.Config.make ~n:16 ~channels:4 ~t:1 ~seed:5L () in
  let streams =
    List.init 3 (fun i ->
        { Unicast.sender = 2 * i; receiver = (2 * i) + 1;
          payloads = [ "a"; "b"; "c" ] })
  in
  let o =
    Unicast.run_streams ~cfg ~keys:pair_keys ~streams
      ~adversary:(Radio.Adversary.random_jammer (Prng.Rng.create 2L) ~channels:4 ~budget:1)
      ()
  in
  check Alcotest.int "all delivered" 9 o.Unicast.delivered_total;
  List.iter
    (fun (r : Unicast.stream_result) ->
      List.iteri
        (fun seq payload ->
          check
            (Alcotest.option Alcotest.string)
            "payload intact" (Some payload)
            (List.assoc_opt seq r.Unicast.received))
        r.Unicast.stream.Unicast.payloads)
    o.Unicast.results

let unicast_rejects_overlap () =
  let cfg = Radio.Config.make ~n:16 ~channels:4 ~t:1 ~seed:5L () in
  let streams =
    [ { Unicast.sender = 0; receiver = 1; payloads = [ "x" ] };
      { Unicast.sender = 1; receiver = 2; payloads = [ "y" ] } ]
  in
  try
    ignore
      (Unicast.run_streams ~cfg ~keys:pair_keys ~streams ~adversary:Radio.Adversary.null ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let unicast_hop_is_pair_private () =
  let cfg = Radio.Config.make ~n:16 ~channels:4 ~t:1 ~seed:5L () in
  let s1 = Unicast.make_spec ~key:(pair_keys (0, 1)) ~cfg () in
  let s2 = Unicast.make_spec ~key:(pair_keys (2, 3)) ~cfg () in
  let differs = ref false in
  for round = 0 to 50 do
    if Unicast.hop s1 ~round <> Unicast.hop s2 ~round then differs := true
  done;
  check Alcotest.bool "distinct pairs hop differently" true !differs

(* -- information-theoretic secret growing -- *)

let secret_bits_keys_match () =
  let cfg = Radio.Config.make ~n:6 ~channels:4 ~t:1 ~seed:41L () in
  let o = Ame.Secret_bits.run ~rounds:80 ~cfg ~sender:0 ~receiver:1 ~eavesdrop_channels:1 () in
  check Alcotest.bool "some values agreed" true (o.Ame.Secret_bits.agreed > 0);
  check Alcotest.bool "keys derived" true (o.Ame.Secret_bits.sender_key <> None);
  check Alcotest.bool "both sides derive the same key" true
    (o.Ame.Secret_bits.sender_key = o.Ame.Secret_bits.receiver_key)

let secret_bits_partial_eavesdropping () =
  (* With 1 of 4 channels monitored, capturing every agreed value is
     vanishingly unlikely once a handful of values are agreed. *)
  let breaches = ref 0 in
  for trial = 1 to 10 do
    let cfg = Radio.Config.make ~n:6 ~channels:4 ~t:1 ~seed:(Int64.of_int (trial * 3)) () in
    let o =
      Ame.Secret_bits.run ~rounds:80 ~cfg ~sender:0 ~receiver:1 ~eavesdrop_channels:1 ()
    in
    check Alcotest.bool "eavesdropper misses something" true
      (o.Ame.Secret_bits.overheard < o.Ame.Secret_bits.agreed);
    if o.Ame.Secret_bits.breached then incr breaches
  done;
  check Alcotest.int "no breach in 10 trials" 0 !breaches

let secret_bits_jamming_slows_but_preserves () =
  let cfg = Radio.Config.make ~n:6 ~channels:4 ~t:1 ~seed:42L () in
  let quiet = Ame.Secret_bits.run ~rounds:80 ~cfg ~sender:0 ~receiver:1 ~eavesdrop_channels:1 () in
  let jammed =
    Ame.Secret_bits.run ~rounds:80 ~cfg ~sender:0 ~receiver:1 ~eavesdrop_channels:1
      ~jam_budget:1 ()
  in
  check Alcotest.bool "jamming reduces agreement" true
    (jammed.Ame.Secret_bits.agreed <= quiet.Ame.Secret_bits.agreed);
  check Alcotest.bool "keys still match" true
    (jammed.Ame.Secret_bits.sender_key = jammed.Ame.Secret_bits.receiver_key)

(* -- energy-bounded adversary -- *)

let energy_budget_respected () =
  let inner = Radio.Adversary.sweep_jammer ~channels:4 ~budget:2 in
  let bounded = Radio.Adversary.energy_bounded ~total:5 inner in
  let spent = ref 0 in
  for round = 0 to 9 do
    spent := !spent + List.length (bounded.Radio.Adversary.act ~round)
  done;
  check Alcotest.int "exactly the budget" 5 !spent;
  check Alcotest.int "silent afterwards" 0
    (List.length (bounded.Radio.Adversary.act ~round:100))

let energy_zero_is_silent () =
  let inner = Radio.Adversary.sweep_jammer ~channels:4 ~budget:2 in
  let bounded = Radio.Adversary.energy_bounded ~total:0 inner in
  check Alcotest.int "no strikes" 0 (List.length (bounded.Radio.Adversary.act ~round:0))

let energy_bounded_fame_stays_sound () =
  let t = 2 in
  let channels = t + 1 in
  let n =
    Ame.Params.nodes_required Ame.Params.default ~channels_used:channels ~budget:t ~channels + 6
  in
  let cfg = Radio.Config.make ~n ~channels ~t ~seed:13L ~max_rounds:Radio.Config.default_max_rounds () in
  let pairs = Rgraph.Workload.disjoint_pairs ~n ~count:8 in
  let o =
    Ame.Fame.run ~cfg ~pairs ~messages
      ~adversary:(fun board ->
        Radio.Adversary.energy_bounded ~total:60
          (Ame.Attacks.schedule_jammer board ~channels ~budget:t ~prefer:Ame.Attacks.Any))
      ()
  in
  check Alcotest.bool "no divergence" false o.Ame.Fame.diverged;
  (match o.Ame.Fame.disruption_vc with
   | Some vc -> check Alcotest.bool "vc within t" true (vc <= t)
   | None -> Alcotest.fail "vc computable");
  List.iter
    (fun (pair, body) -> check Alcotest.string "authentic" (messages pair) body)
    o.Ame.Fame.delivered

let () =
  Alcotest.run "extensions"
    [ ( "rekey",
        [ Alcotest.test_case "excludes compromised" `Slow rekey_excludes_compromised;
          Alcotest.test_case "fresh key" `Slow rekey_produces_fresh_key;
          Alcotest.test_case "cheaper than setup" `Slow rekey_cheaper_than_setup;
          Alcotest.test_case "rejects compromised leader" `Slow rekey_rejects_compromised_leader ] );
      ( "byzantine",
        [ Alcotest.test_case "corrupt surrogates poison f-AME" `Quick corrupted_surrogates_poison_fame;
          Alcotest.test_case "lying witnesses break agreement" `Quick lying_witnesses_break_agreement;
          Alcotest.test_case "direct exchange immune" `Quick direct_immune_to_corrupt_relays ] );
      ( "unicast",
        [ Alcotest.test_case "concurrent delivery" `Quick unicast_delivers_concurrently;
          Alcotest.test_case "rejects overlapping endpoints" `Quick unicast_rejects_overlap;
          Alcotest.test_case "pair-private hopping" `Quick unicast_hop_is_pair_private ] );
      ( "secret-bits",
        [ Alcotest.test_case "keys match" `Quick secret_bits_keys_match;
          Alcotest.test_case "partial eavesdropping" `Quick secret_bits_partial_eavesdropping;
          Alcotest.test_case "jamming tolerated" `Quick secret_bits_jamming_slows_but_preserves ] );
      ( "energy",
        [ Alcotest.test_case "budget respected" `Quick energy_budget_respected;
          Alcotest.test_case "zero budget silent" `Quick energy_zero_is_silent;
          Alcotest.test_case "fame sound under bounded energy" `Quick energy_bounded_fame_stays_sound ] ) ]
