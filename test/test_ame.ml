(* Tests for the f-AME stack: schedule construction, communication-feedback
   (Lemma 5), the full protocol (Theorem 6), the optimizations of Sections
   5.5-5.6, and the baselines. *)

module Params = Ame.Params
module Schedule = Ame.Schedule
module Feedback = Ame.Feedback
module Tree_feedback = Ame.Tree_feedback
module Fame = Ame.Fame
module Direct = Ame.Direct
module Naive = Ame.Naive
module Gossip = Ame.Gossip
module Compact = Ame.Compact
module Attacks = Ame.Attacks
module Oracle = Ame.Oracle
module Workload = Rgraph.Workload

let check = Alcotest.check

let messages (v, w) = Printf.sprintf "m-%d-%d" v w

let fame_cfg ?(t = 2) ?(seed = 1L) ?channels () =
  let channels = Option.value channels ~default:(t + 1) in
  let n = Params.nodes_required Params.default ~channels_used:channels ~budget:t ~channels + 6 in
  Radio.Config.make ~n ~channels ~t ~seed ~max_rounds:Radio.Config.default_max_rounds ()

let null_adversary (_ : Oracle.t) = Radio.Adversary.null

(* -- params -- *)

let params_reps_monotone () =
  let p = Params.default in
  let r1 = Params.feedback_reps p ~channels:3 ~budget:2 ~n:20 in
  let r2 = Params.feedback_reps p ~channels:3 ~budget:2 ~n:200 in
  check Alcotest.bool "more nodes, more reps" true (r2 > r1);
  let wide = Params.feedback_reps p ~channels:6 ~budget:2 ~n:20 in
  check Alcotest.bool "more channels, fewer reps" true (wide < r1)

let params_nodes_required () =
  (* At t=2, C=3: 3 channels * 9 watchers + 6 involved + 1 = 34, echoing the
     paper's n > 3(t+1)^2 + 2(t+1) = 33. *)
  check Alcotest.int "paper bound" 34
    (Params.nodes_required Params.default ~channels_used:3 ~budget:2 ~channels:3)

(* -- schedule -- *)

let sched_proposal ?(starred = []) items =
  ignore starred;
  items

let build_basic () =
  let proposal = [ Game.State.Node 0; Game.State.Edge (1, 2); Game.State.Node 3 ] in
  let sched =
    Schedule.build ~proposal:(sched_proposal proposal) ~surrogates:(fun _ -> [||]) ~n:40
      ~witness_size:3 ~watchers_per_channel:9 ()
  in
  check Alcotest.int "node broadcasts itself" 0 sched.Schedule.broadcaster.(0);
  check Alcotest.int "edge source broadcasts" 1 sched.Schedule.broadcaster.(1);
  check (Alcotest.option Alcotest.int) "edge destination receives" (Some 2)
    sched.Schedule.receiver.(1);
  check Alcotest.int "witnesses are C per channel" 3 (Array.length (Schedule.witness_sets sched).(0));
  check Alcotest.int "watchers per channel" 9 (Array.length sched.Schedule.watchers.(0));
  (* All assigned nodes distinct. *)
  let assigned =
    Array.to_list sched.Schedule.broadcaster
    @ List.filter_map Fun.id (Array.to_list sched.Schedule.receiver)
    @ List.concat_map Array.to_list (Array.to_list sched.Schedule.watchers)
  in
  check Alcotest.int "no node used twice" (List.length assigned)
    (List.length (List.sort_uniq compare assigned))

let build_uses_surrogate () =
  (* Two edges share starred source 5: the second must use a surrogate. *)
  let proposal = [ Game.State.Edge (5, 1); Game.State.Edge (5, 2) ] in
  let sched =
    Schedule.build ~proposal ~surrogates:(fun v -> if v = 5 then [| 30; 31; 32 |] else [||])
      ~n:40 ~witness_size:2 ~watchers_per_channel:6 ()
  in
  check Alcotest.int "first edge keeps its source" 5 sched.Schedule.broadcaster.(0);
  check Alcotest.int "second edge gets a surrogate" 30 sched.Schedule.broadcaster.(1);
  check Alcotest.int "owner still the source" 5 sched.Schedule.owner.(1)

let build_divergence_on_missing_surrogate () =
  let proposal = [ Game.State.Edge (5, 1); Game.State.Edge (5, 2) ] in
  try
    ignore
      (Schedule.build ~proposal ~surrogates:(fun _ -> [||]) ~n:40 ~witness_size:2
         ~watchers_per_channel:6 ());
    Alcotest.fail "expected Divergence"
  with Schedule.Divergence _ -> ()

let build_divergence_when_nodes_short () =
  let proposal = [ Game.State.Node 0; Game.State.Node 1 ] in
  try
    ignore
      (Schedule.build ~proposal ~surrogates:(fun _ -> [||]) ~n:5 ~witness_size:2
         ~watchers_per_channel:6 ());
    Alcotest.fail "expected Divergence"
  with Schedule.Divergence _ -> ()

let build_deterministic () =
  let proposal = [ Game.State.Node 4; Game.State.Edge (7, 8) ] in
  let build () =
    Schedule.build ~proposal ~surrogates:(fun _ -> [||]) ~n:30 ~witness_size:2
      ~watchers_per_channel:6 ()
  in
  let a = build () and b = build () in
  check Alcotest.bool "identical schedules" true
    (a.Schedule.broadcaster = b.Schedule.broadcaster
    && a.Schedule.watchers = b.Schedule.watchers)

let roles_cover_everyone_once () =
  let proposal = [ Game.State.Node 0; Game.State.Edge (1, 2); Game.State.Edge (3, 4) ] in
  let sched =
    Schedule.build ~proposal ~surrogates:(fun _ -> [||]) ~n:50 ~witness_size:3
      ~watchers_per_channel:9 ()
  in
  let broadcasters = ref 0 and receivers = ref 0 and watchers = ref 0 and off = ref 0 in
  for id = 0 to 49 do
    match Schedule.role_of sched id with
    | Schedule.Broadcast _ -> incr broadcasters
    | Schedule.Receive _ -> incr receivers
    | Schedule.Watch _ -> incr watchers
    | Schedule.Off -> incr off
  done;
  check Alcotest.int "3 broadcasters" 3 !broadcasters;
  check Alcotest.int "2 receivers" 2 !receivers;
  check Alcotest.int "27 watchers" 27 !watchers;
  check Alcotest.int "rest off" (50 - 3 - 2 - 27) !off

let witness_channel_lookup () =
  let proposal = [ Game.State.Node 0; Game.State.Node 1 ] in
  let sched =
    Schedule.build ~proposal ~surrogates:(fun _ -> [||]) ~n:30 ~witness_size:2
      ~watchers_per_channel:6 ()
  in
  let w0 = sched.Schedule.watchers.(1).(0) in
  check (Alcotest.option Alcotest.int) "witness channel" (Some 1)
    (Schedule.witness_channel sched w0);
  check (Alcotest.option Alcotest.int) "non-witness" None (Schedule.witness_channel sched 29)

let schedule_invariants_on_random_proposals =
  (* Property: for arbitrary legal-shaped proposals, the schedule never
     double-books a node, carries the right owner on every channel, and
     gives every used channel a full watcher set. *)
  let gen =
    QCheck.Gen.(
      let* t = int_range 1 3 in
      let* node_items = int_range 0 (t + 1) in
      let* seed = int_range 0 9999 in
      return (t, node_items, seed))
  in
  let arb =
    QCheck.make ~print:(fun (t, k, s) -> Printf.sprintf "t=%d nodes=%d seed=%d" t k s) gen
  in
  QCheck.Test.make ~name:"schedule invariants on random proposals" ~count:200 arb
    (fun (t, node_items, seed) ->
      let size = t + 1 in
      let rng = Prng.Rng.create (Int64.of_int (seed + 1)) in
      let node_items = min node_items size in
      (* Distinct proposal nodes 0..node_items-1; edges with starred sources
         50, 51, ... and distinct destinations above 60. *)
      let nodes = List.init node_items (fun i -> Game.State.Node i) in
      let edges =
        List.init (size - node_items) (fun i ->
            let src = 50 + Prng.Rng.int rng 2 in
            Game.State.Edge (src, 60 + i))
      in
      let proposal = nodes @ edges in
      let surrogates v = if v >= 50 then [| 40; 41; 42; 43; 44; 45 |] else [||] in
      match
        Schedule.build ~proposal ~surrogates ~n:120 ~witness_size:(t + 1)
          ~watchers_per_channel:(3 * (t + 1)) ()
      with
      | exception Schedule.Divergence _ -> true (* legal outcome for adversarial inputs *)
      | sched ->
        let k = Array.length sched.Schedule.items in
        let assigned =
          Array.to_list sched.Schedule.broadcaster
          @ List.filter_map Fun.id (Array.to_list sched.Schedule.receiver)
          @ List.concat_map Array.to_list (Array.to_list sched.Schedule.watchers)
        in
        let no_double_booking =
          List.length assigned = List.length (List.sort_uniq compare assigned)
        in
        let owners_right =
          List.for_all Fun.id
            (List.init k (fun c ->
                 match sched.Schedule.items.(c) with
                 | Game.State.Node v -> sched.Schedule.owner.(c) = v
                 | Game.State.Edge (v, w) ->
                   sched.Schedule.owner.(c) = v && sched.Schedule.receiver.(c) = Some w))
        in
        let witnesses_full =
          Array.for_all (fun ws -> Array.length ws = t + 1) (Schedule.witness_sets sched)
        in
        no_double_booking && owners_right && witnesses_full)

let schedule_index_matches_scan =
  (* Property: the O(1) inverted index agrees with the retained linear
     scans for every node, across consecutive builds on one shared scratch
     (the engine's usage pattern), including after the scratch regrows. *)
  let gen =
    QCheck.Gen.(
      let* t = int_range 1 3 in
      let* node_items = int_range 0 (t + 1) in
      let* seed = int_range 0 9999 in
      let* builds = int_range 1 3 in
      return (t, node_items, seed, builds))
  in
  let arb =
    QCheck.make
      ~print:(fun (t, k, s, b) -> Printf.sprintf "t=%d nodes=%d seed=%d builds=%d" t k s b)
      gen
  in
  QCheck.Test.make ~name:"schedule index matches scan oracle" ~count:200 arb
    (fun (t, node_items, seed, builds) ->
      let size = t + 1 in
      let rng = Prng.Rng.create (Int64.of_int (seed + 1)) in
      let node_items = min node_items size in
      let scratch = Schedule.make_scratch () in
      let build round =
        let nodes = List.init node_items (fun i -> Game.State.Node ((i + round) mod 10)) in
        let edges =
          List.init (size - node_items) (fun i ->
              let src = 50 + Prng.Rng.int rng 2 in
              Game.State.Edge (src, 60 + i))
        in
        let surrogates v = if v >= 50 then [| 40; 41; 42; 43; 44; 45 |] else [||] in
        Schedule.build ~scratch ~proposal:(nodes @ edges) ~surrogates ~n:120
          ~witness_size:(t + 1) ~watchers_per_channel:(3 * (t + 1)) ()
      in
      let agrees sched =
        let ok = ref true in
        for id = 0 to 119 do
          if Schedule.role_of sched id <> Schedule.role_of_scan sched id then ok := false;
          if Schedule.witness_channel sched id <> Schedule.witness_channel_scan sched id
          then ok := false
        done;
        !ok
      in
      let rec go round last_ok stale =
        if round >= builds then last_ok && Option.fold ~none:true ~some:agrees stale
        else
          match build round with
          | exception Schedule.Divergence _ -> go (round + 1) last_ok stale
          | sched ->
            (* A later build on the same scratch stamps the previous index
               stale: its lookups must fall back to the scans, unchanged. *)
            go (round + 1) (last_ok && agrees sched) (Some sched)
      in
      go 0 true None)

let oracle_entry_huge_proposal () =
  (* The flattened builder and iterative oracle walk must survive a
     proposal three orders beyond protocol sizes without stack overflow,
     and the O(1) role index must still agree with the scan at that scale. *)
  let k = 100_000 in
  let proposal = List.init k (fun i -> Game.State.Node i) in
  let sched =
    Schedule.build ~proposal ~surrogates:(fun _ -> [||]) ~n:(3 * k) ~witness_size:1
      ~watchers_per_channel:1 ()
  in
  let entry = Schedule.oracle_entry sched in
  check Alcotest.int "all channels in use" k (List.length entry.Oracle.channels_in_use);
  check Alcotest.int "kinds cover all channels" k (List.length entry.Oracle.kinds);
  List.iter
    (fun id ->
      let same = Schedule.role_of sched id = Schedule.role_of_scan sched id in
      check Alcotest.bool (Printf.sprintf "index = scan at %d" id) true same)
    [ 0; 1; k - 1; k; (2 * k) - 1; (3 * k) - 1 ]

(* -- communication-feedback (Lemma 5) -- *)

let feedback_agreement_across_seeds () =
  for seed = 1 to 15 do
    let agreed, _rounds =
      Experiments.Feedback_exp.agreement_trial ~beta:3.0 ~t:2 ~n:30
        ~seed:(Int64.of_int seed)
    in
    check Alcotest.bool (Printf.sprintf "seed %d agrees" seed) true agreed
  done

let feedback_round_cost () =
  let _, rounds = Experiments.Feedback_exp.agreement_trial ~beta:3.0 ~t:2 ~n:30 ~seed:3L in
  let reps = Params.feedback_reps Params.default ~channels:3 ~budget:2 ~n:30 in
  check Alcotest.int "rounds = C * reps" (3 * reps) rounds

let feedback_starved_fails_sometimes () =
  let failures = ref 0 in
  for seed = 1 to 15 do
    let agreed, _ =
      Experiments.Feedback_exp.agreement_trial ~beta:0.2 ~t:2 ~n:30 ~seed:(Int64.of_int seed)
    in
    if not agreed then incr failures
  done;
  check Alcotest.bool "starving feedback causes disagreement" true (!failures > 0)

(* -- f-AME (Theorem 6) -- *)

let fame_delivers_without_adversary () =
  (* Even with no interference the game may strand a final tail of fewer
     than t+1 proposable items (Restriction 1 demands full proposals), so
     the clean-run guarantee is the same as the adversarial one: the failed
     set has vertex cover <= t.  Here (disjoint pairs) that means at most t
     failures. *)
  let t = 2 in
  let cfg = fame_cfg ~t () in
  let pairs = Workload.disjoint_pairs ~n:cfg.Radio.Config.n ~count:8 in
  let o = Fame.run ~cfg ~pairs ~messages ~adversary:null_adversary () in
  check Alcotest.bool "at most t stranded" true (List.length o.Fame.failed <= t);
  check Alcotest.bool "no divergence" false o.Fame.diverged;
  (match o.Fame.disruption_vc with
   | Some vc -> check Alcotest.bool "residue coverable by t" true (vc <= t)
   | None -> Alcotest.fail "vc computable");
  List.iter
    (fun (pair, body) -> check Alcotest.string "payload" (messages pair) body)
    o.Fame.delivered

let fame_t_disruptable_under_jamming () =
  List.iter
    (fun (t, seed) ->
      let cfg = fame_cfg ~t ~seed () in
      let pairs = Workload.disjoint_pairs ~n:cfg.Radio.Config.n ~count:(4 * t) in
      let o =
        Fame.run ~cfg ~pairs ~messages
          ~adversary:(fun board ->
            Attacks.schedule_jammer board ~channels:(t + 1) ~budget:t
              ~prefer:Attacks.Prefer_edges)
          ()
      in
      check Alcotest.bool "no divergence" false o.Fame.diverged;
      match o.Fame.disruption_vc with
      | Some vc ->
        check Alcotest.bool (Printf.sprintf "t=%d vc=%d <= t" t vc) true (vc <= t)
      | None -> Alcotest.fail "vc should be computable")
    [ (1, 2L); (2, 3L); (3, 4L); (2, 5L); (2, 6L) ]

let fame_authentic_under_spoofing () =
  let t = 2 in
  let cfg = fame_cfg ~t ~seed:9L () in
  let pairs = Workload.disjoint_pairs ~n:cfg.Radio.Config.n ~count:6 in
  let o =
    Fame.run ~cfg ~pairs ~messages
      ~adversary:(fun _ ->
        Naive.simulating_adversary (Prng.Rng.create 21L) ~pairs ~channels:(t + 1) ~budget:t)
      ()
  in
  List.iter
    (fun (pair, body) -> check Alcotest.string "authentic payload" (messages pair) body)
    o.Fame.delivered;
  check Alcotest.int "no spoofed receptions at all" 0
    o.Fame.engine.Radio.Engine.stats.Radio.Transcript.Stats.spoofed_deliveries

let fame_sender_awareness () =
  let t = 2 in
  let cfg = fame_cfg ~t ~seed:12L () in
  let pairs = Workload.disjoint_pairs ~n:cfg.Radio.Config.n ~count:8 in
  let o =
    Fame.run ~cfg ~pairs ~messages
      ~adversary:(fun board ->
        Attacks.schedule_jammer board ~channels:(t + 1) ~budget:t ~prefer:Attacks.Any)
      ()
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "confirmed = delivered" (List.map fst o.Fame.delivered) o.Fame.confirmed

let fame_deterministic () =
  let go () =
    let cfg = fame_cfg ~t:1 ~seed:31L () in
    let pairs = Workload.disjoint_pairs ~n:cfg.Radio.Config.n ~count:5 in
    let o =
      Fame.run ~cfg ~pairs ~messages
        ~adversary:(fun board ->
          Attacks.schedule_jammer board ~channels:2 ~budget:1 ~prefer:Attacks.Prefer_edges)
        ()
    in
    (o.Fame.delivered, o.Fame.failed, o.Fame.engine.Radio.Engine.rounds_used)
  in
  let a = go () and b = go () in
  check Alcotest.bool "reruns identical" true (a = b)

let fame_validates_arguments () =
  let cfg = fame_cfg ~t:2 () in
  let pairs = Workload.disjoint_pairs ~n:cfg.Radio.Config.n ~count:4 in
  (try
     ignore (Fame.run ~channels_used:2 ~cfg ~pairs ~messages ~adversary:null_adversary ());
     Alcotest.fail "proposal size <= t accepted"
   with Invalid_argument _ -> ());
  let small = Radio.Config.make ~n:10 ~channels:3 ~t:2 () in
  try
    ignore (Fame.run ~cfg:small ~pairs:[ (0, 1) ] ~messages ~adversary:null_adversary ());
    Alcotest.fail "tiny n accepted"
  with Invalid_argument _ -> ()

let fame_wide_channels_faster () =
  (* C = 2t must use fewer rounds than C = t+1 on the same workload. *)
  let t = 2 in
  let n =
    max
      (Params.nodes_required Params.default ~channels_used:(t + 1) ~budget:t
         ~channels:(t + 1))
      (Params.nodes_required Params.default ~channels_used:(2 * t) ~budget:t
         ~channels:(2 * t))
    + 6
  in
  let base = Radio.Config.make ~n ~channels:(t + 1) ~t ~seed:40L ~max_rounds:Radio.Config.default_max_rounds () in
  let pairs = Workload.disjoint_pairs ~n ~count:8 in
  let narrow =
    Fame.run ~cfg:base ~pairs ~messages
      ~adversary:(fun board ->
        Attacks.schedule_jammer board ~channels:(t + 1) ~budget:t ~prefer:Attacks.Any)
      ()
  in
  let wide_cfg = Radio.Config.make ~n ~channels:(2 * t) ~t ~seed:40L ~max_rounds:Radio.Config.default_max_rounds () in
  let wide =
    Fame.run ~cfg:wide_cfg ~pairs ~messages
      ~adversary:(fun board ->
        Attacks.schedule_jammer board ~channels:(2 * t) ~budget:t ~prefer:Attacks.Any)
      ()
  in
  check Alcotest.bool "2t channels strictly faster" true
    (wide.Fame.engine.Radio.Engine.rounds_used < narrow.Fame.engine.Radio.Engine.rounds_used);
  check Alcotest.bool "wide run sound" false wide.Fame.diverged

let fame_tree_mode_works () =
  let t = 2 in
  let channels = 2 * t * t in
  let cfg = Radio.Config.make ~n:55 ~channels ~t ~seed:41L ~max_rounds:Radio.Config.default_max_rounds () in
  let pairs = Workload.disjoint_pairs ~n:55 ~count:8 in
  let o =
    Fame.run ~channels_used:4 ~feedback_mode:Fame.Tree ~cfg ~pairs ~messages
      ~adversary:(fun board ->
        Attacks.schedule_jammer board ~channels ~budget:t ~prefer:Attacks.Prefer_edges)
      ()
  in
  check Alcotest.bool "tree mode sound" false o.Fame.diverged;
  (match o.Fame.disruption_vc with
   | Some vc -> check Alcotest.bool "tree vc <= t" true (vc <= t)
   | None -> Alcotest.fail "vc computable");
  List.iter
    (fun (pair, body) -> check Alcotest.string "tree payload" (messages pair) body)
    o.Fame.delivered

let fame_tree_mode_validation () =
  let t = 2 in
  let cfg = Radio.Config.make ~n:55 ~channels:8 ~t ~seed:1L () in
  try
    ignore
      (Fame.run ~channels_used:6 ~feedback_mode:Fame.Tree ~cfg ~pairs:[ (0, 1) ] ~messages
         ~adversary:null_adversary ());
    Alcotest.fail "non power-of-two accepted"
  with Invalid_argument _ -> ()

let fame_invariants_on_random_workloads =
  (* End-to-end property: for random workloads, seeds, and adversaries,
     every delivered payload is authentic, accounting adds up, and when the
     run did not hit a whp failure the disruption cover respects t. *)
  let gen =
    QCheck.Gen.(
      let* t = int_range 1 2 in
      let* seed = int_range 1 100_000 in
      let* pair_count = int_range 1 6 in
      let* adversary_kind = int_range 0 2 in
      return (t, seed, pair_count, adversary_kind))
  in
  let arb =
    QCheck.make
      ~print:(fun (t, seed, k, a) -> Printf.sprintf "t=%d seed=%d pairs=%d adv=%d" t seed k a)
      gen
  in
  QCheck.Test.make ~name:"fame invariants on random workloads" ~count:25 arb
    (fun (t, seed, pair_count, adversary_kind) ->
      let channels = t + 1 in
      let n =
        Params.nodes_required Params.default ~channels_used:channels ~budget:t ~channels + 4
      in
      let rng = Prng.Rng.create (Int64.of_int seed) in
      let pairs = Workload.random_pairs rng ~n ~count:pair_count in
      let cfg =
        Radio.Config.make ~n ~channels ~t ~seed:(Int64.of_int (seed * 31))
          ~max_rounds:Radio.Config.default_max_rounds ()
      in
      let adversary board =
        match adversary_kind with
        | 0 -> Radio.Adversary.null
        | 1 ->
          Radio.Adversary.random_jammer (Prng.Rng.create (Int64.of_int (seed * 7)))
            ~channels ~budget:t
        | _ -> Attacks.schedule_jammer board ~channels ~budget:t ~prefer:Attacks.Prefer_edges
      in
      let o = Fame.run ~cfg ~pairs ~messages ~adversary () in
      let authentic =
        List.for_all (fun (pair, body) -> body = messages pair) o.Fame.delivered
      in
      let accounted =
        List.length o.Fame.delivered + List.length o.Fame.failed = List.length pairs
      in
      let cover_ok =
        o.Fame.diverged
        || (match o.Fame.disruption_vc with Some vc -> vc <= t | None -> false)
      in
      authentic && accounted && cover_ok)

(* -- tree feedback internals -- *)

let tree_pair_index_bijective () =
  (* At each level the pair indices of the lower endpoints enumerate
     0..groups/2-1 exactly once. *)
  let groups = 8 in
  for level = 0 to 2 do
    let lowers =
      List.filter (fun c -> c land (1 lsl level) = 0) (List.init groups Fun.id)
    in
    let indices = List.map (Tree_feedback.pair_index ~level) lowers in
    check
      (Alcotest.list Alcotest.int)
      (Printf.sprintf "level %d indices" level)
      (List.init (groups / 2) Fun.id)
      (List.sort compare indices)
  done

let tree_rounds_formula () =
  check Alcotest.int "(2*log2 8 + 2) * reps" ((2 * 3 + 2) * 5)
    (Tree_feedback.rounds_consumed ~groups:8 ~reps:5)

(* -- direct baseline -- *)

let direct_delivers_without_adversary () =
  (* The direct baseline stops when at most t node-disjoint edges remain
     schedulable (the adversary could then block every move); on a
     disjoint-pairs workload that strands at most t pairs. *)
  let t = 2 in
  let cfg = fame_cfg ~t ~seed:50L () in
  let pairs = Workload.disjoint_pairs ~n:cfg.Radio.Config.n ~count:8 in
  let o = Direct.run ~cfg ~pairs ~messages ~adversary:null_adversary () in
  check Alcotest.bool "at most t stranded" true (List.length o.Direct.failed <= t);
  check Alcotest.bool "delivered the rest" true (List.length o.Direct.delivered >= 8 - t);
  List.iter
    (fun (pair, body) -> check Alcotest.string "payload" (messages pair) body)
    o.Direct.delivered

let direct_triangle_lower_bound () =
  (* The Section 5 argument: t disjoint triangles, triangle-aware jamming,
     no surrogates -> disruption cover exactly 2t. *)
  List.iter
    (fun t ->
      let triples = List.init t (fun i -> [ 3 * i; (3 * i) + 1; (3 * i) + 2 ]) in
      let triple_of v = if v < 3 * t then Some (v / 3) else None in
      let pairs = List.concat_map Workload.complete_on triples in
      let cfg = fame_cfg ~t ~seed:(Int64.of_int (60 + t)) () in
      let o =
        Direct.run ~cfg ~pairs ~messages
          ~adversary:(fun board ->
            Attacks.triangle_jammer board ~channels:(t + 1) ~budget:t ~triple_of)
          ()
      in
      match o.Direct.disruption_vc with
      | Some vc -> check Alcotest.int (Printf.sprintf "t=%d cover is 2t" t) (2 * t) vc
      | None -> Alcotest.fail "vc computable")
    [ 1; 2 ]

let fame_beats_triangle_adversary () =
  let t = 2 in
  let triples = List.init t (fun i -> [ 3 * i; (3 * i) + 1; (3 * i) + 2 ]) in
  let triple_of v = if v < 3 * t then Some (v / 3) else None in
  let pairs = List.concat_map Workload.complete_on triples in
  let cfg = fame_cfg ~t ~seed:70L () in
  let o =
    Fame.run ~cfg ~pairs ~messages
      ~adversary:(fun board ->
        Attacks.triangle_jammer board ~channels:(t + 1) ~budget:t ~triple_of)
      ()
  in
  match o.Fame.disruption_vc with
  | Some vc -> check Alcotest.bool "surrogates beat triangles" true (vc <= t)
  | None -> Alcotest.fail "vc computable"

(* -- naive protocol (Theorem 2) -- *)

let naive_genuine_without_adversary () =
  let t = 2 in
  let cfg = Radio.Config.make ~n:12 ~channels:(t + 1) ~t ~seed:80L () in
  let pairs = Workload.disjoint_pairs ~n:12 ~count:3 in
  let o = Naive.run ~rounds:200 ~cfg ~pairs ~messages ~adversary:Radio.Adversary.null () in
  check Alcotest.int "all genuine" 3 o.Naive.genuine;
  check Alcotest.int "none fooled" 0 o.Naive.fooled

let naive_fooled_by_simulation () =
  let t = 2 in
  let fooled = ref 0 in
  for seed = 1 to 20 do
    let cfg = Radio.Config.make ~n:12 ~channels:(t + 1) ~t ~seed:(Int64.of_int seed) () in
    let pairs = Workload.disjoint_pairs ~n:12 ~count:t in
    let adversary =
      Naive.simulating_adversary
        (Prng.Rng.create (Int64.of_int (seed * 7)))
        ~pairs ~channels:(t + 1) ~budget:t
    in
    let o = Naive.run ~rounds:60 ~cfg ~pairs ~messages ~adversary () in
    fooled := !fooled + o.Naive.fooled
  done;
  check Alcotest.bool "simulating adversary fools some" true (!fooled > 5)

(* -- gossip baseline -- *)

let gossip_completes_cleanly () =
  let cfg = Radio.Config.make ~n:12 ~channels:2 ~t:1 ~seed:90L () in
  let o =
    Gossip.run ~cfg ~rumors:(Printf.sprintf "r%d") ~adversary:Radio.Adversary.null ()
  in
  check Alcotest.bool "completed" true (o.Gossip.rounds_to_completion <> None);
  check Alcotest.int "no fakes" 0 o.Gossip.fake_rumors_accepted

let gossip_accepts_fakes_under_spoofing () =
  let cfg = Radio.Config.make ~n:12 ~channels:2 ~t:1 ~seed:91L () in
  let adversary =
    Radio.Adversary.spoofer (Prng.Rng.create 17L) ~channels:2 ~budget:1
      ~forge:(fun ~round chan ->
        Radio.Frame.Vector { owner = chan; entries = [ (round mod 12, "FAKE") ] })
  in
  let o = Gossip.run ~cfg ~rumors:(Printf.sprintf "r%d") ~adversary () in
  check Alcotest.bool "gossip is spoofable" true (o.Gossip.fake_rumors_accepted > 0)

(* -- compact (Section 5.6) -- *)

let compact_calendar_layout () =
  let pairs = [ (0, 1); (0, 2); (3, 1) ] in
  let cal = Compact.make_calendar ~pairs ~budget:1 ~n:20 () in
  check Alcotest.int "one epoch per edge" 3 (Array.length cal.Compact.epochs);
  (match Compact.epoch_of_round cal 0 with
   | Some ((0, 1), 0, 2) -> ()
   | _ -> Alcotest.fail "first epoch should be (0,1) index 0 of 2");
  (match Compact.epoch_of_round cal (cal.Compact.epoch_rounds * 2) with
   | Some ((3, 1), 0, 1) -> ()
   | _ -> Alcotest.fail "third epoch should be (3,1)");
  check Alcotest.bool "past the end" true
    (Compact.epoch_of_round cal (cal.Compact.epoch_rounds * 3) = None)

let compact_hashes_separate () =
  check Alcotest.bool "H1 <> H2 on same input" true
    (Compact.hash_chain [ "a"; "b" ] <> Compact.vector_signature [ "a"; "b" ]);
  check Alcotest.bool "chain encoding is injective-ish" true
    (Compact.hash_chain [ "ab"; "c" ] <> Compact.hash_chain [ "a"; "bc" ])

let compact_end_to_end_under_spoof_flood () =
  let t = 1 in
  let cfg = Radio.Config.make ~n:24 ~channels:2 ~t ~seed:95L ~max_rounds:Radio.Config.default_max_rounds () in
  let sources = [ 0; 1; 2; 3 ] and dests = [ 10; 11; 12 ] in
  let pairs = List.concat_map (fun v -> List.map (fun w -> (v, w)) dests) sources in
  let o =
    Compact.run ~cfg ~pairs ~messages
      ~gossip_adversary:(fun cal ->
        Compact.chain_spoofer (Prng.Rng.create 7L) cal ~channels:2 ~budget:t)
      ~fame_adversary:(fun board ->
        Attacks.schedule_jammer board ~channels:2 ~budget:t ~prefer:Attacks.Any)
      ()
  in
  check Alcotest.int "spoof flood defeated" 0 o.Compact.reconstruction_failures;
  List.iter
    (fun (pair, body) -> check Alcotest.string "reconstructed payload" (messages pair) body)
    o.Compact.delivered;
  check Alcotest.bool "some deliveries happened" true (List.length o.Compact.delivered > 0)

let compact_frames_constant_size () =
  (* Frame size must not grow with fan-out. *)
  let t = 1 in
  let run_fan k =
    let dests = List.init k (fun i -> 10 + i) in
    let pairs = List.map (fun w -> (0, w)) dests @ List.map (fun w -> (1, w)) dests in
    let cfg = Radio.Config.make ~n:(16 + k) ~channels:2 ~t ~seed:96L ~max_rounds:Radio.Config.default_max_rounds () in
    let o =
      Compact.run ~cfg ~pairs ~messages
        ~gossip_adversary:(fun _ -> Radio.Adversary.null)
        ~fame_adversary:null_adversary ()
    in
    o.Compact.max_honest_payload
  in
  let small = run_fan 2 and large = run_fan 8 in
  check Alcotest.int "payload independent of fan-out" small large

(* -- attacks -- *)

let triangle_jammer_targets_only_triples () =
  let board = Oracle.create () in
  Oracle.post board ~round:5
    { Oracle.channels_in_use = [ 0; 1; 2 ];
      kinds = [ (0, Oracle.Edge_item (0, 1)); (1, Oracle.Edge_item (0, 4));
                (2, Oracle.Node_item 7) ] };
  let adversary =
    Attacks.triangle_jammer board ~channels:3 ~budget:2 ~triple_of:(fun v ->
        if v < 3 then Some 0 else None)
  in
  match adversary.Radio.Adversary.act ~round:5 with
  | [ { Radio.Adversary.chan = 0; spoof = None } ] -> ()
  | strikes ->
    Alcotest.failf "expected only channel 0 jammed, got %d strikes" (List.length strikes)

let schedule_jammer_prefers_edges () =
  let board = Oracle.create () in
  Oracle.post board ~round:3
    { Oracle.channels_in_use = [ 0; 1; 2 ];
      kinds = [ (0, Oracle.Node_item 5); (1, Oracle.Edge_item (2, 3));
                (2, Oracle.Edge_item (4, 6)) ] };
  let adversary =
    Attacks.schedule_jammer board ~channels:3 ~budget:2 ~prefer:Attacks.Prefer_edges
  in
  let strikes = adversary.Radio.Adversary.act ~round:3 in
  let channels = List.map (fun s -> s.Radio.Adversary.chan) strikes in
  check (Alcotest.list Alcotest.int) "edges jammed first" [ 1; 2 ] (List.sort compare channels)

let () =
  Alcotest.run "ame"
    [ ( "params",
        [ Alcotest.test_case "reps monotone" `Quick params_reps_monotone;
          Alcotest.test_case "nodes required" `Quick params_nodes_required ] );
      ( "schedule",
        [ Alcotest.test_case "basic build" `Quick build_basic;
          Alcotest.test_case "surrogate substitution" `Quick build_uses_surrogate;
          Alcotest.test_case "missing surrogate diverges" `Quick build_divergence_on_missing_surrogate;
          Alcotest.test_case "node shortage diverges" `Quick build_divergence_when_nodes_short;
          Alcotest.test_case "deterministic" `Quick build_deterministic;
          Alcotest.test_case "role partition" `Quick roles_cover_everyone_once;
          Alcotest.test_case "witness lookup" `Quick witness_channel_lookup;
          QCheck_alcotest.to_alcotest schedule_invariants_on_random_proposals;
          QCheck_alcotest.to_alcotest schedule_index_matches_scan;
          Alcotest.test_case "oracle entry at k = 1e5" `Quick oracle_entry_huge_proposal ] );
      ( "feedback",
        [ Alcotest.test_case "agreement across seeds" `Quick feedback_agreement_across_seeds;
          Alcotest.test_case "round cost" `Quick feedback_round_cost;
          Alcotest.test_case "starved feedback fails" `Quick feedback_starved_fails_sometimes ] );
      ( "fame",
        [ Alcotest.test_case "clean delivery" `Quick fame_delivers_without_adversary;
          Alcotest.test_case "t-disruptability" `Slow fame_t_disruptable_under_jamming;
          Alcotest.test_case "authentication under spoofing" `Quick fame_authentic_under_spoofing;
          Alcotest.test_case "sender awareness" `Quick fame_sender_awareness;
          Alcotest.test_case "deterministic" `Quick fame_deterministic;
          Alcotest.test_case "argument validation" `Quick fame_validates_arguments;
          Alcotest.test_case "C=2t faster" `Slow fame_wide_channels_faster;
          Alcotest.test_case "tree mode end-to-end" `Slow fame_tree_mode_works;
          Alcotest.test_case "tree mode validation" `Quick fame_tree_mode_validation;
          QCheck_alcotest.to_alcotest fame_invariants_on_random_workloads ] );
      ( "tree-feedback",
        [ Alcotest.test_case "pair index bijective" `Quick tree_pair_index_bijective;
          Alcotest.test_case "round formula" `Quick tree_rounds_formula ] );
      ( "direct",
        [ Alcotest.test_case "clean delivery" `Quick direct_delivers_without_adversary;
          Alcotest.test_case "triangle lower bound 2t" `Slow direct_triangle_lower_bound;
          Alcotest.test_case "fame beats triangles" `Slow fame_beats_triangle_adversary ] );
      ( "naive",
        [ Alcotest.test_case "genuine without adversary" `Quick naive_genuine_without_adversary;
          Alcotest.test_case "fooled by simulation" `Quick naive_fooled_by_simulation ] );
      ( "gossip",
        [ Alcotest.test_case "completes cleanly" `Quick gossip_completes_cleanly;
          Alcotest.test_case "spoofable" `Quick gossip_accepts_fakes_under_spoofing ] );
      ( "compact",
        [ Alcotest.test_case "calendar layout" `Quick compact_calendar_layout;
          Alcotest.test_case "hash domains separate" `Quick compact_hashes_separate;
          Alcotest.test_case "end-to-end under spoof flood" `Slow compact_end_to_end_under_spoof_flood;
          Alcotest.test_case "constant frame size" `Slow compact_frames_constant_size ] );
      ( "attacks",
        [ Alcotest.test_case "triangle jammer selective" `Quick triangle_jammer_targets_only_triples;
          Alcotest.test_case "schedule jammer preference" `Quick schedule_jammer_prefers_edges ] ) ]
