(* Tests for the public Core facade and the experiment registry. *)

let check = Alcotest.check

let attack_parsing () =
  (match Core.attack_of_string "schedule-jam" with
   | Ok Core.Schedule_jam -> ()
   | _ -> Alcotest.fail "schedule-jam should parse");
  (match Core.attack_of_string "bogus" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bogus should not parse");
  check Alcotest.int "five canned attacks" 5 (List.length Core.attack_names);
  List.iter
    (fun name ->
      match Core.attack_of_string name with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    Core.attack_names

let exchange_api () =
  let triples = [ (0, 5, "alpha"); (1, 6, "beta"); (2, 7, "gamma"); (3, 8, "delta") ] in
  let r = Core.exchange ~seed:2L ~t:1 ~n:25 ~attack:Core.Schedule_jam triples in
  check Alcotest.bool "authentic" true r.Core.authentic;
  check Alcotest.bool "sound" false r.Core.diverged;
  check Alcotest.int "accounting adds up" (List.length triples)
    (List.length r.Core.delivered + List.length r.Core.failed);
  (match r.Core.disruption_cover with
   | Some c -> check Alcotest.bool "cover within t" true (c <= 1)
   | None -> Alcotest.fail "cover should be computable");
  check Alcotest.bool "rounds positive" true (r.Core.rounds > 0)

let exchange_no_attack_delivers_all () =
  let triples = [ (0, 5, "a"); (1, 6, "b"); (2, 7, "c") ] in
  let r = Core.exchange ~seed:3L ~t:1 ~n:25 ~attack:Core.No_attack triples in
  check Alcotest.int "all delivered" 3 (List.length r.Core.delivered)

let group_key_api () =
  let r = Core.establish_group_key ~seed:4L ~t:1 ~n:20 ~attack:Core.Random_jam () in
  check Alcotest.bool "agreement guarantee" true (r.Core.agreed_holders >= 19);
  check Alcotest.int "nobody wrong" 0 r.Core.wrong_holders;
  check Alcotest.bool "keys retrievable" true (r.Core.group_key_of 3 <> None);
  check Alcotest.bool "out of range is None" true (r.Core.group_key_of 99 = None)

let channel_api () =
  let sends = [ (0, 1, "hello"); (1, 2, "world") ] in
  let r = Core.open_channel ~seed:5L ~t:1 ~n:16 ~attack:Core.Random_jam sends in
  check Alcotest.bool "secrecy" true r.Core.secrecy_ok;
  check Alcotest.bool "authentication" true r.Core.authentication_ok;
  List.iter
    (fun (_, _, _, receivers) -> check Alcotest.int "everyone hears" 15 receivers)
    r.Core.deliveries

let registry_complete () =
  check
    (Alcotest.list Alcotest.string)
    "all experiment ids present"
    [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11"; "e12"; "e13";
      "e14"; "e15"; "e16"; "e17" ]
    Experiments.Registry.ids;
  check Alcotest.bool "find works" true (Experiments.Registry.find "e4" <> None);
  check Alcotest.bool "find rejects junk" true (Experiments.Registry.find "e99" = None)

let registry_ids_unique () =
  let sorted = List.sort_uniq compare Experiments.Registry.ids in
  check Alcotest.int "experiment ids are unique"
    (List.length Experiments.Registry.ids)
    (List.length sorted)

let registry_e4_runs () =
  (* The cheapest experiment must run end-to-end through the registry. *)
  match Experiments.Registry.find "e4" with
  | None -> Alcotest.fail "e4 missing"
  | Some e ->
    let r = e.Experiments.Registry.run ~quick:true ~jobs:1 in
    let rendered = Experiments.Common.render_to_string r in
    check Alcotest.bool "produced a table" true (String.length rendered > 100)

let () =
  Alcotest.run "api"
    [ ( "core",
        [ Alcotest.test_case "attack parsing" `Quick attack_parsing;
          Alcotest.test_case "exchange" `Quick exchange_api;
          Alcotest.test_case "exchange clean" `Quick exchange_no_attack_delivers_all;
          Alcotest.test_case "group key" `Slow group_key_api;
          Alcotest.test_case "secure channel" `Quick channel_api ] );
      ( "registry",
        [ Alcotest.test_case "complete" `Quick registry_complete;
          Alcotest.test_case "ids unique" `Quick registry_ids_unique;
          Alcotest.test_case "e4 runs" `Quick registry_e4_runs ] ) ]
