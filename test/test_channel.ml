(* Tests for the Section 7 long-lived secure channel: hopping, delivery,
   secrecy, authentication, t-reliability, and broadcast-collision
   semantics. *)

module Service = Secure_channel.Service

let check = Alcotest.check

let key = Crypto.Sha256.digest "test-group-key"

let make ?(t = 2) ?(n = 16) ?(seed = 3L) () =
  let cfg = Radio.Config.make ~n ~channels:(t + 1) ~t ~seed ~record_transcript:true () in
  (cfg, Service.make_spec ~key ~cfg ())

let spec_shape () =
  let cfg, spec = make () in
  check Alcotest.int "channels copied" cfg.Radio.Config.channels spec.Service.channels;
  check Alcotest.bool "reps scale like t log n" true
    (spec.Service.reps >= 2 && spec.Service.reps < 200);
  let _, bigger = make ~t:3 ~n:64 () in
  check Alcotest.bool "reps grow with t and n" true (bigger.Service.reps > spec.Service.reps)

let hop_properties () =
  let _, spec = make () in
  for round = 0 to 200 do
    let c = Service.hop spec ~round in
    check Alcotest.bool "hop in range" true (c >= 0 && c < spec.Service.channels)
  done;
  check Alcotest.int "hop deterministic" (Service.hop spec ~round:17) (Service.hop spec ~round:17);
  (* The pattern must actually hop: over 60 rounds all channels appear. *)
  let seen = Array.make spec.Service.channels false in
  for round = 0 to 59 do
    seen.(Service.hop spec ~round) <- true
  done;
  check Alcotest.bool "all channels used" true (Array.for_all Fun.id seen)

let full_delivery_under_jamming () =
  let cfg, spec = make () in
  let holders = List.init 16 Fun.id in
  let sends = [ (0, 2, "alpha"); (1, 5, "beta"); (2, 9, "gamma") ] in
  let o =
    Service.run_workload ~cfg ~key_holders:holders ~spec ~sends
      ~adversary:(Radio.Adversary.random_jammer (Prng.Rng.create 8L) ~channels:3 ~budget:2)
      ()
  in
  List.iter
    (fun (d : Service.delivery) ->
      check Alcotest.int
        (Printf.sprintf "er %d delivered to all" d.Service.emulated_round)
        15
        (List.length d.Service.received_by))
    o.Service.deliveries;
  check Alcotest.int "no leaks" 0 o.Service.plaintext_leaks;
  check Alcotest.int "no forgeries" 0 o.Service.forged_accepts

let outsiders_locked_out () =
  let cfg, spec = make () in
  (* Nodes 14, 15 lack the key. *)
  let holders = List.init 14 Fun.id in
  let sends = [ (0, 0, "secret broadcast") ] in
  let o =
    Service.run_workload ~cfg ~key_holders:holders ~spec ~sends
      ~adversary:Radio.Adversary.null ()
  in
  let d = List.hd o.Service.deliveries in
  check Alcotest.bool "outsider 14 hears nothing" false (List.mem 14 d.Service.received_by);
  check Alcotest.bool "outsider 15 hears nothing" false (List.mem 15 d.Service.received_by);
  check Alcotest.int "holders all hear" 13 (List.length d.Service.received_by)

let forged_frames_rejected () =
  let cfg, spec = make () in
  let holders = List.init 16 Fun.id in
  let sends = [ (0, 1, "real") ] in
  (* Spoofer floods Sealed-looking garbage on random channels. *)
  let forge ~round chan =
    ignore chan;
    Radio.Frame.Sealed (Printf.sprintf "garbage-%d" round)
  in
  let adversary =
    Radio.Adversary.spoofer (Prng.Rng.create 11L) ~channels:3 ~budget:2 ~forge
  in
  let o = Service.run_workload ~cfg ~key_holders:holders ~spec ~sends ~adversary () in
  check Alcotest.int "no forged accepts" 0 o.Service.forged_accepts;
  let d = List.hd o.Service.deliveries in
  check Alcotest.bool "real message still lands" true (List.length d.Service.received_by > 0)

let replayed_ciphertext_rejected () =
  (* A replay from a previous emulated round carries an old nonce; honest
     receivers key the stream by the round, so a replayed frame decrypts
     under the wrong keystream position... but MAC still verifies (the MAC
     covers nonce + body).  The receiver therefore *does* decrypt it back to
     the original payload: replay within the service reproduces an old
     authentic message, attributed to its true sender and seq, which
     run_workload counts via forged_accepts = 0 only when (seq, sender,
     msg) matches a genuine send.  This test pins that behaviour down. *)
  let cfg, spec = make () in
  let holders = List.init 16 Fun.id in
  let sends = [ (0, 1, "original") ] in
  let captured = ref None in
  let adversary =
    { Radio.Adversary.name = "replayer";
      act =
        (fun ~round:_ ->
          match !captured with
          | Some frame -> [ { Radio.Adversary.chan = 0; spoof = Some frame } ]
          | None -> []);
      observe =
        (fun record ->
          List.iter
            (fun (_, _, frame) ->
              match frame with Radio.Frame.Sealed _ -> captured := Some frame | _ -> ())
            record.Radio.Transcript.honest_tx);
      observes = true }
  in
  let o = Service.run_workload ~cfg ~key_holders:holders ~spec ~sends ~adversary () in
  (* A replayed authentic frame is not a forgery: it decodes to the original
     (sender, seq, msg) triple which matches a genuine send. *)
  check Alcotest.int "replay does not forge new content" 0 o.Service.forged_accepts

let concurrent_broadcasts_collide () =
  let cfg, spec = make () in
  let holders = List.init 16 Fun.id in
  (* Two senders in the same emulated round: both follow the same hopping
     pattern, so every repetition collides and nobody receives. *)
  let sends = [ (0, 1, "left"); (0, 2, "right") ] in
  let o =
    Service.run_workload ~cfg ~key_holders:holders ~spec ~sends
      ~adversary:Radio.Adversary.null ()
  in
  List.iter
    (fun (d : Service.delivery) ->
      check Alcotest.int "collision loses both" 0 (List.length d.Service.received_by))
    o.Service.deliveries

let sender_must_hold_key () =
  let cfg, spec = make () in
  try
    ignore
      (Service.run_workload ~cfg ~key_holders:[ 0; 1 ] ~spec ~sends:[ (0, 5, "x") ]
         ~adversary:Radio.Adversary.null ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "secure_channel"
    [ ( "spec",
        [ Alcotest.test_case "shape" `Quick spec_shape;
          Alcotest.test_case "hop properties" `Quick hop_properties ] );
      ( "service",
        [ Alcotest.test_case "full delivery under jamming" `Quick full_delivery_under_jamming;
          Alcotest.test_case "outsiders locked out" `Quick outsiders_locked_out;
          Alcotest.test_case "forged frames rejected" `Quick forged_frames_rejected;
          Alcotest.test_case "replay is not a forgery" `Quick replayed_ciphertext_rejected;
          Alcotest.test_case "concurrent broadcasts collide" `Quick concurrent_broadcasts_collide;
          Alcotest.test_case "sender must hold key" `Quick sender_must_hold_key ] ) ]
