(* The radio_lint engine against known-good/known-bad fixtures: each rule
   family has at least one firing fixture and one allowlisted/escaped
   fixture, plus the config parser's grammar and error paths.  Fixture
   sources live under fixtures/lint/ and are never compiled — the linter
   only parses them. *)

let fx name = "fixtures/lint/" ^ name

let rule_cfg ?(enabled = true) ?(allow = []) ?(scope = []) () =
  { Lint.Config.enabled; allow; scope }

(* Base test config: partiality confined to the fixture "protocol" area,
   interface checks confined to the iface fixtures, everything else on
   everywhere. *)
let base_config ?(rules = []) () =
  { Lint.Config.roots = [ "fixtures/lint" ];
    rules =
      rules
      @ [ ("partial-list", rule_cfg ~scope:[ "fixtures/lint" ] ());
          ("partial-option-get", rule_cfg ~scope:[ "fixtures/lint" ] ());
          ("partial-array-unsafe", rule_cfg ~scope:[ "fixtures/lint" ] ());
          ("partial-assert-false", rule_cfg ~scope:[ "fixtures/lint" ] ());
          ("iface-missing-mli", rule_cfg ~scope:[ "fixtures/lint/iface" ] ()) ] }

let run ?rules files =
  Lint.Engine.run ~config:(base_config ?rules ()) (List.map fx files)

let active_rules report =
  List.map (fun (v : Lint.Engine.violation) -> v.rule) report.Lint.Engine.active

let check_no_errors report =
  Alcotest.(check (list (pair string string))) "no engine errors" [] report.Lint.Engine.errors

(* --- config parser -------------------------------------------------- *)

let test_config_fixture () =
  match Lint.Config.load (fx "fixture.toml") with
  | Error e -> Alcotest.failf "fixture.toml should parse: %s" e
  | Ok cfg ->
    Alcotest.(check (list string)) "roots" [ "fixtures/lint" ] cfg.Lint.Config.roots;
    let r = Lint.Config.rule_cfg cfg "nondet-random" in
    Alcotest.(check bool) "enabled" true r.Lint.Config.enabled;
    Alcotest.(check (list string))
      "allow" [ "fixtures/lint/ok_global.ml" ] r.Lint.Config.allow;
    let p = Lint.Config.rule_cfg cfg "partial-list" in
    Alcotest.(check (list string)) "scope" [ "fixtures/lint" ] p.Lint.Config.scope;
    let io = Lint.Config.rule_cfg cfg "io-print" in
    Alcotest.(check bool) "disabled" false io.Lint.Config.enabled;
    (* A rule without a section gets the defaults. *)
    let d = Lint.Config.rule_cfg cfg "global-mutable" in
    Alcotest.(check bool) "default enabled" true d.Lint.Config.enabled

let expect_parse_error name text =
  match Lint.Config.parse_string text with
  | Ok _ -> Alcotest.failf "%s: expected a parse error" name
  | Error _ -> ()

let test_config_errors () =
  expect_parse_error "unknown rule" "[rule.no-such-rule]\nenabled = true\n";
  expect_parse_error "unknown section" "[nonsense]\n";
  expect_parse_error "unknown key" "[lint]\nbogus = true\n";
  expect_parse_error "bad value" "[rule.io-print]\nenabled = \"yes\"\n";
  expect_parse_error "unterminated array" "[lint]\nroots = [\"lib\",\n";
  expect_parse_error "bare junk" "just some words\n"

let test_config_repo () =
  (* The checked-in lint.toml must always parse against the current rule
     catalogue — a typo'd id there would otherwise silently disable
     enforcement. *)
  match Lint.Config.load "../lint.toml" with
  | Error e -> Alcotest.failf "repo lint.toml should parse: %s" e
  | Ok cfg ->
    Alcotest.(check (list string)) "roots" [ "lib"; "bin"; "bench" ] cfg.Lint.Config.roots

let test_prefix_semantics () =
  let m = Lint.Config.prefix_matches in
  Alcotest.(check bool) "dir prefix" true (m "lib/prng/rng.ml" "lib/prng");
  Alcotest.(check bool) "trailing slash" true (m "lib/prng/rng.ml" "lib/prng/");
  Alcotest.(check bool) "exact file" true (m "lib/parallel/clock.ml" "lib/parallel/clock.ml");
  Alcotest.(check bool) "no sibling bleed" false (m "lib/prng_x/evil.ml" "lib/prng");
  Alcotest.(check bool) "no partial file" false (m "lib/prng.mlx" "lib/prng.ml");
  Alcotest.(check bool) "empty prefix" false (m "lib/prng/rng.ml" "")

(* --- nondeterminism family ------------------------------------------ *)

let test_nondet_fires () =
  let report = run [ "bad_nondet.ml" ] in
  check_no_errors report;
  Alcotest.(check (list string)) "every nondet escape caught"
    [ "nondet-random"; "nondet-time"; "nondet-unix"; "nondet-hashtbl-order";
      "nondet-hashtbl-order"; "nondet-hashtbl-order"; "nondet-poly-hash";
      "nondet-poly-compare" ]
    (active_rules report)

let test_nondet_escaped () =
  let report = run [ "ok_nondet.ml" ] in
  check_no_errors report;
  Alcotest.(check (list string)) "no active violations" [] (active_rules report);
  Alcotest.(check int) "all hits suppressed" 8 (List.length report.Lint.Engine.suppressed);
  List.iter
    (fun (_, reason) -> Alcotest.(check string) "reason" "escape-comment" reason)
    report.Lint.Engine.suppressed

let test_domain_fires () =
  let report = run [ "bad_domain.ml" ] in
  check_no_errors report;
  Alcotest.(check (list string)) "every raw parallelism primitive caught"
    [ "nondet-domain"; "nondet-domain"; "nondet-domain"; "nondet-domain"; "nondet-domain" ]
    (active_rules report)

let test_domain_escaped () =
  let report = run [ "ok_domain.ml" ] in
  check_no_errors report;
  Alcotest.(check (list string)) "no active violations" [] (active_rules report);
  Alcotest.(check int) "all hits suppressed" 5 (List.length report.Lint.Engine.suppressed)

let test_domain_allowlisted () =
  (* The shape the repo config uses: lib/parallel on the allowlist. *)
  let rules = [ ("nondet-domain", rule_cfg ~allow:[ fx "bad_domain.ml" ] ()) ] in
  let report = run ~rules [ "bad_domain.ml" ] in
  Alcotest.(check (list string)) "no active violations" [] (active_rules report);
  Alcotest.(check int) "all hits suppressed" 5 (List.length report.Lint.Engine.suppressed);
  List.iter
    (fun (_, reason) -> Alcotest.(check string) "reason" "allowlist" reason)
    report.Lint.Engine.suppressed

let test_atomic_fires () =
  let report = run [ "bad_atomic.ml" ] in
  check_no_errors report;
  Alcotest.(check (list string)) "every Atomic constructor/mutator caught"
    [ "nondet-atomic"; "nondet-atomic"; "nondet-atomic"; "nondet-atomic"; "nondet-atomic" ]
    (active_rules report)

let test_atomic_escaped () =
  (* Atomic.get is a read and never fires; the three writes are
     escape-commented. *)
  let report = run [ "ok_atomic.ml" ] in
  check_no_errors report;
  Alcotest.(check (list string)) "no active violations" [] (active_rules report);
  Alcotest.(check int) "all hits suppressed" 3 (List.length report.Lint.Engine.suppressed)

let test_atomic_allowlisted () =
  (* The shape the repo config uses: lib/parallel and lib/cache on the
     allowlist. *)
  let rules = [ ("nondet-atomic", rule_cfg ~allow:[ fx "bad_atomic.ml" ] ()) ] in
  let report = run ~rules [ "bad_atomic.ml" ] in
  Alcotest.(check (list string)) "no active violations" [] (active_rules report);
  Alcotest.(check int) "all hits suppressed" 5 (List.length report.Lint.Engine.suppressed);
  List.iter
    (fun (_, reason) -> Alcotest.(check string) "reason" "allowlist" reason)
    report.Lint.Engine.suppressed

(* --- partiality family ---------------------------------------------- *)

let test_partial_fires () =
  let report = run [ "bad_partial.ml" ] in
  check_no_errors report;
  Alcotest.(check (list string)) "every partial call caught"
    [ "partial-list"; "partial-list"; "partial-option-get"; "partial-array-unsafe";
      "partial-assert-false" ]
    (active_rules report)

let test_partial_escaped () =
  let report = run [ "ok_partial.ml" ] in
  Alcotest.(check (list string)) "no active violations" [] (active_rules report);
  Alcotest.(check int) "all hits suppressed" 5 (List.length report.Lint.Engine.suppressed)

let test_partial_out_of_scope () =
  (* The same file under a scope that excludes it: hits are dropped
     entirely, not merely suppressed. *)
  let scoped =
    List.map
      (fun id -> (id, rule_cfg ~scope:[ "lib" ] ()))
      [ "partial-list"; "partial-option-get"; "partial-array-unsafe"; "partial-assert-false" ]
  in
  let report = run ~rules:scoped [ "bad_partial.ml" ] in
  Alcotest.(check (list string)) "nothing fires" [] (active_rules report);
  Alcotest.(check int) "nothing suppressed" 0 (List.length report.Lint.Engine.suppressed)

(* --- global-state family -------------------------------------------- *)

let test_global_fires () =
  let report = run [ "bad_global.ml" ] in
  check_no_errors report;
  (* Four module-level cells (including the submodule's); the
     function-local ref in [counter] must not fire. *)
  Alcotest.(check (list string)) "module-level state caught"
    [ "global-mutable"; "global-mutable"; "global-mutable"; "global-mutable" ]
    (active_rules report)

let test_global_allowlisted () =
  let rules = [ ("global-mutable", rule_cfg ~allow:[ fx "ok_global.ml" ] ()) ] in
  let report = run ~rules [ "ok_global.ml" ] in
  Alcotest.(check (list string)) "no active violations" [] (active_rules report);
  Alcotest.(check int) "registry hits suppressed" 2 (List.length report.Lint.Engine.suppressed);
  List.iter
    (fun (_, reason) -> Alcotest.(check string) "reason" "allowlist" reason)
    report.Lint.Engine.suppressed

(* --- io family ------------------------------------------------------ *)

let test_io_fires () =
  let report = run [ "bad_io.ml" ] in
  check_no_errors report;
  Alcotest.(check (list string)) "every print caught"
    [ "io-print"; "io-print"; "io-print"; "io-print" ]
    (active_rules report)

let test_io_escaped () =
  let report = run [ "ok_io.ml" ] in
  (* fprintf to a caller-supplied formatter is fine; the two direct
     prints are escape-commented. *)
  Alcotest.(check (list string)) "no active violations" [] (active_rules report);
  Alcotest.(check int) "prints suppressed" 2 (List.length report.Lint.Engine.suppressed)

let test_io_disabled () =
  let rules = [ ("io-print", rule_cfg ~enabled:false ()) ] in
  let report = run ~rules [ "bad_io.ml" ] in
  Alcotest.(check (list string)) "rule off" [] (active_rules report);
  Alcotest.(check int) "not even suppressed" 0 (List.length report.Lint.Engine.suppressed)

(* --- interface family ----------------------------------------------- *)

let test_iface () =
  let report = run [ "iface" ] in
  check_no_errors report;
  Alcotest.(check (list string)) "orphan flagged once" [ "iface-missing-mli" ]
    (active_rules report);
  match report.Lint.Engine.active with
  | [ v ] -> Alcotest.(check string) "the orphan" (fx "iface/orphan.ml") v.Lint.Engine.file
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

(* --- engine plumbing ------------------------------------------------ *)

let test_exit_semantics () =
  Alcotest.(check bool) "bad fixture fails" false
    (Lint.Engine.ok (run [ "bad_nondet.ml" ]));
  Alcotest.(check bool) "escaped fixture passes" true
    (Lint.Engine.ok (run [ "ok_nondet.ml" ]))

let test_collect_files () =
  let files = Lint.Engine.collect_files [ fx ""; fx "" ] in
  Alcotest.(check bool) "sorted" true (List.sort compare files = files);
  Alcotest.(check bool) "deduplicated"
    true
    (List.length (List.sort_uniq compare files) = List.length files);
  Alcotest.(check bool) "recurses into iface/" true
    (List.mem (fx "iface/orphan.ml") files);
  Alcotest.(check bool) "only .ml" true
    (List.for_all (fun f -> Filename.check_suffix f ".ml") files)

let () =
  Alcotest.run "lint"
    [ ( "config",
        [ Alcotest.test_case "fixture grammar" `Quick test_config_fixture;
          Alcotest.test_case "rejects bad input" `Quick test_config_errors;
          Alcotest.test_case "repo lint.toml parses" `Quick test_config_repo;
          Alcotest.test_case "prefix semantics" `Quick test_prefix_semantics ] );
      ( "nondet",
        [ Alcotest.test_case "fires" `Quick test_nondet_fires;
          Alcotest.test_case "escape comments" `Quick test_nondet_escaped;
          Alcotest.test_case "domain fires" `Quick test_domain_fires;
          Alcotest.test_case "domain escape comments" `Quick test_domain_escaped;
          Alcotest.test_case "domain allowlist" `Quick test_domain_allowlisted;
          Alcotest.test_case "atomic fires" `Quick test_atomic_fires;
          Alcotest.test_case "atomic escape comments" `Quick test_atomic_escaped;
          Alcotest.test_case "atomic allowlist" `Quick test_atomic_allowlisted ] );
      ( "partiality",
        [ Alcotest.test_case "fires" `Quick test_partial_fires;
          Alcotest.test_case "escape comments" `Quick test_partial_escaped;
          Alcotest.test_case "scope confines" `Quick test_partial_out_of_scope ] );
      ( "global-state",
        [ Alcotest.test_case "fires" `Quick test_global_fires;
          Alcotest.test_case "allowlist" `Quick test_global_allowlisted ] );
      ( "io",
        [ Alcotest.test_case "fires" `Quick test_io_fires;
          Alcotest.test_case "escape comments" `Quick test_io_escaped;
          Alcotest.test_case "disable" `Quick test_io_disabled ] );
      ( "interface",
        [ Alcotest.test_case "missing mli" `Quick test_iface ] );
      ( "engine",
        [ Alcotest.test_case "exit semantics" `Quick test_exit_semantics;
          Alcotest.test_case "file collection" `Quick test_collect_files ] ) ]
