(* Tests for the starred-edge removal game: the proposal restrictions of
   Section 5.1, the greedy strategy of Section 5.2 (including the Lemma 3
   termination property), and the game runner. *)

module State = Game.State
module Greedy = Game.Greedy
module Referee = Game.Referee
module Runner = Game.Runner
module Digraph = Rgraph.Digraph
module Vertex_cover = Rgraph.Vertex_cover
module Workload = Rgraph.Workload

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let graph_gen =
  QCheck.Gen.(
    let* n = int_range 3 9 in
    let* density = int_range 1 3 in
    let* seed = int_range 0 100000 in
    let rng = Prng.Rng.create (Int64.of_int seed) in
    let edges = ref [] in
    for v = 0 to n - 1 do
      for w = 0 to n - 1 do
        if v <> w && Prng.Rng.int rng 4 < density then edges := (v, w) :: !edges
      done
    done;
    return !edges)

let arb_graph = QCheck.make ~print:QCheck.Print.(list (pair int int)) graph_gen

let ok_or_fail label = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" label msg

let expect_error label = function
  | Ok () -> Alcotest.failf "%s: expected rejection" label
  | Error _ -> ()

(* A state with a starred node, built by applying a node choice. *)
let state_with_star () =
  let g = Digraph.of_edges [ (0, 1); (0, 2); (3, 4); (5, 6) ] in
  let st = State.create g ~t:1 in
  State.apply st [ State.Node 0 ]

(* -- proposal restrictions -- *)

let restriction_1_size () =
  let st = State.create (Digraph.of_edges [ (0, 1); (2, 3) ]) ~t:1 in
  expect_error "too small" (State.check_proposal st [ State.Node 0 ]);
  expect_error "too big"
    (State.check_proposal st [ State.Node 0; State.Node 2; State.Edge (0, 1) ]);
  ok_or_fail "exact size" (State.check_proposal st [ State.Node 0; State.Node 2 ])

let restriction_1_membership () =
  let st = State.create (Digraph.of_edges [ (0, 1) ]) ~t:1 in
  expect_error "node outside V" (State.check_proposal st [ State.Node 9; State.Node 0 ]);
  expect_error "edge outside E" (State.check_proposal st [ State.Node 0; State.Edge (1, 0) ])

let restriction_2_unique_nodes () =
  let st = State.create (Digraph.of_edges [ (0, 1); (2, 3) ]) ~t:1 in
  expect_error "duplicate node" (State.check_proposal st [ State.Node 0; State.Node 0 ]);
  expect_error "node inside proposed edge"
    (State.check_proposal st [ State.Node 0; State.Edge (0, 1) ]);
  expect_error "node is edge destination"
    (State.check_proposal st [ State.Node 1; State.Edge (0, 1) ])

let restriction_3_distinct_destinations () =
  let st = state_with_star () in
  (* 0 is starred; edges (0,1) and (0,2) share source 0 (allowed), but give
     them the same destination via another edge to test R3. *)
  let g = Digraph.of_edges [ (0, 2); (1, 2); (3, 4); (5, 6) ] in
  let st3 = State.apply (State.create g ~t:1) [ State.Node 0 ] in
  ignore st;
  expect_error "shared destination"
    (State.check_proposal st3 [ State.Edge (0, 2); State.Edge (1, 2) ])

let restriction_4_shared_source () =
  let starred = state_with_star () in
  ok_or_fail "starred source may repeat"
    (State.check_proposal starred [ State.Edge (0, 1); State.Edge (0, 2) ]);
  let unstarred = State.create (Digraph.of_edges [ (0, 1); (0, 2) ]) ~t:1 in
  expect_error "unstarred source may not repeat"
    (State.check_proposal unstarred [ State.Edge (0, 1); State.Edge (0, 2) ])

let apply_semantics () =
  let g = Digraph.of_edges [ (0, 1); (2, 3) ] in
  let st = State.create g ~t:1 in
  let st = State.apply st [ State.Node 0; State.Edge (2, 3) ] in
  check Alcotest.bool "starred" true (State.is_starred st 0);
  check Alcotest.int "edge removed" 1 (Digraph.Dense.edge_count st.State.graph);
  (* Starring twice is idempotent. *)
  let st = State.apply st [ State.Node 0 ] in
  check (Alcotest.list Alcotest.int) "no duplicate star" [ 0 ] st.State.starred

(* -- greedy strategy -- *)

let p1_p2_definitions () =
  let g = Digraph.of_edges [ (0, 1); (2, 3); (4, 5) ] in
  let st = State.create g ~t:2 in
  check (Alcotest.list Alcotest.int) "p1 = unstarred sources" [ 0; 2; 4 ] (Greedy.p1 st);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "p2 empty initially" []
    (Greedy.p2 st);
  (* Star everything; now p1 is empty and p2 holds all edges. *)
  let st = State.apply st [ State.Node 0; State.Node 2; State.Node 4 ] in
  check (Alcotest.list Alcotest.int) "p1 empty" [] (Greedy.p1 st);
  check Alcotest.int "p2 has all edges" 3 (List.length (Greedy.p2 st))

let greedy_proposals_always_legal =
  QCheck.Test.make ~name:"greedy proposal satisfies restrictions" ~count:300 arb_graph
    (fun edges ->
      QCheck.assume (edges <> []);
      let g = Digraph.of_edges edges in
      let t = 1 + (List.length edges mod 3) in
      (* Walk several moves with a stingy referee, checking each proposal. *)
      let rec walk st steps =
        steps = 0
        ||
        match Greedy.proposal st with
        | None -> true
        | Some proposal ->
          (match State.check_proposal st proposal with
           | Error _ -> false
           | Ok () ->
             let response = [ List.hd proposal ] in
             walk (State.apply st response) (steps - 1))
      in
      walk (State.create g ~t) 50)

let lemma3_termination_implies_cover =
  QCheck.Test.make ~name:"greedy termination implies VC <= t (Lemma 3)" ~count:300 arb_graph
    (fun edges ->
      let g = Digraph.of_edges edges in
      let t = 1 + (List.length edges mod 3) in
      let rec drive st steps =
        if steps = 0 then true
        else
          match Greedy.proposal st with
          | None -> Vertex_cover.at_most_dense st.State.graph t
          | Some proposal -> drive (State.apply st [ List.hd proposal ]) (steps - 1)
      in
      drive (State.create g ~t) 200)

(* -- runner -- *)

let runner_wins_all_referees () =
  let g = Digraph.of_edges (Workload.complete ~n:7) in
  List.iter
    (fun referee ->
      let o = Runner.play (State.create g ~t:2) referee in
      check Alcotest.bool (referee.Referee.name ^ " wins") true o.Runner.won)
    [ Referee.generous; Referee.minimal_first; Referee.spiteful ~min_return:1;
      Referee.stingy ~min_return:2; Referee.random (Prng.Rng.create 9L) ~min_return:1 ]

let runner_move_bound =
  QCheck.Test.make ~name:"moves bounded by |E| + stars (Theorem 4)" ~count:100 arb_graph
    (fun edges ->
      QCheck.assume (List.length edges >= 2);
      let g = Digraph.of_edges edges in
      let o = Runner.play (State.create g ~t:1) Referee.minimal_first in
      o.Runner.moves <= Digraph.edge_count g + o.Runner.stars + 1)

let runner_rejects_cheating_referee () =
  let g = Digraph.of_edges (Workload.complete ~n:5) in
  let cheat =
    { Referee.name = "cheat"; choose = (fun _ _ -> [ State.Edge (97, 98) ]) }
  in
  try
    ignore (Runner.play (State.create g ~t:1) cheat);
    Alcotest.fail "expected Rule_violation"
  with Runner.Rule_violation _ -> ()

let runner_rejects_empty_response () =
  let g = Digraph.of_edges (Workload.complete ~n:5) in
  let empty = { Referee.name = "empty"; choose = (fun _ _ -> []) } in
  try
    ignore (Runner.play (State.create g ~t:1) empty);
    Alcotest.fail "expected Rule_violation"
  with Runner.Rule_violation _ -> ()

let runner_stingy_faster_than_minimal () =
  (* The C = 2t regime: a referee forced to return t items per move
     finishes the game in about |E|/t moves. *)
  let g = Digraph.of_edges (Workload.complete ~n:8) in
  let minimal = Runner.play (State.create ~proposal_size:4 g ~t:2) Referee.minimal_first in
  let stingy = Runner.play (State.create ~proposal_size:4 g ~t:2) (Referee.stingy ~min_return:2) in
  check Alcotest.bool "stingy-2 at most half the moves (+1)" true
    (stingy.Runner.moves <= (minimal.Runner.moves / 2) + 1)

let () =
  Alcotest.run "game"
    [ ( "restrictions",
        [ Alcotest.test_case "restriction 1: size" `Quick restriction_1_size;
          Alcotest.test_case "restriction 1: membership" `Quick restriction_1_membership;
          Alcotest.test_case "restriction 2: node uniqueness" `Quick restriction_2_unique_nodes;
          Alcotest.test_case "restriction 3: destinations" `Quick restriction_3_distinct_destinations;
          Alcotest.test_case "restriction 4: shared sources" `Quick restriction_4_shared_source;
          Alcotest.test_case "apply semantics" `Quick apply_semantics ] );
      ( "greedy",
        [ Alcotest.test_case "P1/P2 definitions" `Quick p1_p2_definitions;
          qcheck greedy_proposals_always_legal;
          qcheck lemma3_termination_implies_cover ] );
      ( "runner",
        [ Alcotest.test_case "wins against all referees" `Quick runner_wins_all_referees;
          Alcotest.test_case "cheating referee detected" `Quick runner_rejects_cheating_referee;
          Alcotest.test_case "empty response detected" `Quick runner_rejects_empty_response;
          Alcotest.test_case "larger proposals finish faster" `Quick runner_stingy_faster_than_minimal;
          qcheck runner_move_bound ] ) ]
